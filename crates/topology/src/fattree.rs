//! Three-level k-ary fat-tree topology (the baseline Jellyfish is
//! pitched against).
//!
//! Jellyfish's claim to fame (Singla et al., and the motivation in this
//! paper's introduction) is beating the fat-tree on cost-efficiency:
//! comparable bisection bandwidth and shorter average paths from the same
//! switch count. This module builds the standard 3-level k-ary fat-tree
//! so the comparison can be reproduced with the same [`Graph`] machinery.
//!
//! A `k`-ary fat-tree (`k` even) has:
//!
//! * `k` pods, each with `k/2` edge and `k/2` aggregation switches;
//! * `(k/2)^2` core switches;
//! * every edge switch hosts `k/2` compute nodes, `k^3/4` in total;
//! * `5k^2/4` switches overall.
//!
//! Switch numbering: edge switches first (pod-major), then aggregation
//! (pod-major), then core — so hosts attach to switches `0..k^2/2` in
//! order, compatible with [`crate::RrgParams`]-style host mapping helpers.

use crate::graph::{Graph, GraphBuilder, NodeId};
use serde::{Deserialize, Serialize};

/// Parameters of a 3-level k-ary fat-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatTreeParams {
    /// Switch radix `k` (must be even, >= 2).
    pub k: usize,
}

impl FatTreeParams {
    /// Creates parameters for radix `k`.
    pub const fn new(k: usize) -> Self {
        Self { k }
    }

    /// Validates the radix.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.k < 2 {
            return Err("fat-tree radix must be >= 2");
        }
        if !self.k.is_multiple_of(2) {
            return Err("fat-tree radix must be even");
        }
        Ok(())
    }

    /// Pods (`k`).
    pub fn pods(&self) -> usize {
        self.k
    }

    /// Edge switches (`k^2/2`).
    pub fn edge_switches(&self) -> usize {
        self.k * self.k / 2
    }

    /// Aggregation switches (`k^2/2`).
    pub fn agg_switches(&self) -> usize {
        self.k * self.k / 2
    }

    /// Core switches (`(k/2)^2`).
    pub fn core_switches(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }

    /// All switches (`5k^2/4`).
    pub fn switches(&self) -> usize {
        self.edge_switches() + self.agg_switches() + self.core_switches()
    }

    /// Compute nodes (`k^3/4`).
    pub fn num_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Hosts per edge switch (`k/2`).
    pub fn hosts_per_edge(&self) -> usize {
        self.k / 2
    }

    /// The switch hosting compute node `h` (an edge switch).
    pub fn switch_of_host(&self, h: usize) -> NodeId {
        debug_assert!(h < self.num_hosts());
        (h / self.hosts_per_edge()) as NodeId
    }

    /// Node-id range of edge switches.
    pub fn edge_range(&self) -> std::ops::Range<NodeId> {
        0..self.edge_switches() as NodeId
    }

    /// Node-id range of aggregation switches.
    pub fn agg_range(&self) -> std::ops::Range<NodeId> {
        let e = self.edge_switches() as NodeId;
        e..e + self.agg_switches() as NodeId
    }

    /// Node-id range of core switches.
    pub fn core_range(&self) -> std::ops::Range<NodeId> {
        let ea = (self.edge_switches() + self.agg_switches()) as NodeId;
        ea..ea + self.core_switches() as NodeId
    }
}

/// Builds the switch-level graph of a 3-level k-ary fat-tree.
///
/// # Errors
/// Returns the validation message for an invalid radix.
pub fn build_fat_tree(params: FatTreeParams) -> Result<Graph, &'static str> {
    params.validate()?;
    let k = params.k;
    let half = k / 2;
    let mut b = GraphBuilder::new(params.switches());

    let edge = |pod: usize, i: usize| (pod * half + i) as NodeId;
    let agg = |pod: usize, i: usize| (params.edge_switches() + pod * half + i) as NodeId;
    let core = |i: usize| (params.edge_switches() + params.agg_switches() + i) as NodeId;

    for pod in 0..k {
        // Full bipartite edge <-> aggregation inside the pod.
        for e in 0..half {
            for a in 0..half {
                b.add_edge(edge(pod, e), agg(pod, a));
            }
        }
        // Aggregation switch `a` of every pod connects to core group `a`:
        // cores a*half .. a*half+half.
        for a in 0..half {
            for c in 0..half {
                b.add_edge(agg(pod, a), core(a * half + c));
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::topology_stats;

    #[test]
    fn validates_radix() {
        assert!(FatTreeParams::new(3).validate().is_err());
        assert!(FatTreeParams::new(0).validate().is_err());
        assert!(FatTreeParams::new(4).validate().is_ok());
        assert!(build_fat_tree(FatTreeParams::new(5)).is_err());
    }

    #[test]
    fn k4_counts() {
        let p = FatTreeParams::new(4);
        assert_eq!(p.switches(), 20);
        assert_eq!(p.edge_switches(), 8);
        assert_eq!(p.agg_switches(), 8);
        assert_eq!(p.core_switches(), 4);
        assert_eq!(p.num_hosts(), 16);
        let g = build_fat_tree(p).unwrap();
        assert_eq!(g.num_nodes(), 20);
        // Edges: k pods * (k/2)^2 (edge-agg) + k pods * (k/2)^2 (agg-core)
        // = 16 + 16.
        assert_eq!(g.num_edges(), 32);
    }

    #[test]
    fn degrees_match_roles() {
        let p = FatTreeParams::new(6);
        let g = build_fat_tree(p).unwrap();
        for s in p.edge_range() {
            assert_eq!(g.degree(s), 3, "edge switch uplinks = k/2");
        }
        for s in p.agg_range() {
            assert_eq!(g.degree(s), 6, "aggregation degree = k");
        }
        for s in p.core_range() {
            assert_eq!(g.degree(s), 6, "core degree = k pods");
        }
    }

    #[test]
    fn is_connected_and_has_expected_diameter() {
        let p = FatTreeParams::new(4);
        let g = build_fat_tree(p).unwrap();
        assert!(g.is_connected());
        // Switch-level diameter of a 3-level fat-tree: edge -> agg ->
        // core -> agg -> edge = 4 hops.
        let stats = topology_stats(&g);
        assert_eq!(stats.diameter, 4);
    }

    #[test]
    fn host_mapping() {
        let p = FatTreeParams::new(4);
        assert_eq!(p.hosts_per_edge(), 2);
        assert_eq!(p.switch_of_host(0), 0);
        assert_eq!(p.switch_of_host(1), 0);
        assert_eq!(p.switch_of_host(2), 1);
        assert_eq!(p.switch_of_host(15), 7);
    }

    #[test]
    fn intra_pod_paths_avoid_core() {
        // Two edge switches in the same pod are 2 hops apart (via any
        // pod aggregation switch).
        let p = FatTreeParams::new(4);
        let g = build_fat_tree(p).unwrap();
        let d = crate::metrics::bfs_distances(&g, 0);
        assert_eq!(d[1], 2, "same-pod edge switches");
        // Different pods: 4 hops.
        assert_eq!(d[2], 4, "cross-pod edge switches");
    }

    #[test]
    fn core_reaches_every_pod_directly() {
        let p = FatTreeParams::new(6);
        let g = build_fat_tree(p).unwrap();
        for c in p.core_range() {
            // Each core connects to exactly one aggregation switch per pod.
            let mut pods_seen = std::collections::HashSet::new();
            for &a in g.neighbors(c) {
                let pod = (a as usize - p.edge_switches()) / (p.k / 2);
                assert!(pods_seen.insert(pod), "core {c} double-connects pod {pod}");
            }
            assert_eq!(pods_seen.len(), p.pods());
        }
    }
}
