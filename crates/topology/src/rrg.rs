//! Random regular graph (Jellyfish) construction.
//!
//! Two construction procedures are provided:
//!
//! * [`ConstructionMethod::Incremental`] — the procedure from the Jellyfish
//!   paper (Singla et al., NSDI'12): repeatedly join random pairs of
//!   switches with free ports, then repair leftover free ports with edge
//!   swaps until the graph is `y`-regular.
//! * [`ConstructionMethod::PairingModel`] — the classic configuration
//!   model: shuffle port stubs, pair them up, and repair self-loops /
//!   duplicate edges with random 2-swaps.
//!
//! Both are seeded and deterministic. Construction retries with a derived
//! seed in the (rare, small-`N`) event that the sampled graph is
//! disconnected, since Jellyfish assumes a connected fabric.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a Jellyfish topology `RRG(N, x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrgParams {
    /// Number of switches (`N`).
    pub switches: usize,
    /// Ports per switch (`x`).
    pub ports: usize,
    /// Ports per switch connected to other switches (`y`); the switch graph
    /// is `y`-regular.
    pub network_ports: usize,
}

impl RrgParams {
    /// Convenience constructor for `RRG(N, x, y)`.
    pub const fn new(switches: usize, ports: usize, network_ports: usize) -> Self {
        Self { switches, ports, network_ports }
    }

    /// The small topology used in the paper: `RRG(36, 24, 16)`.
    pub const fn small() -> Self {
        Self::new(36, 24, 16)
    }

    /// The medium topology used in the paper: `RRG(720, 24, 19)`.
    pub const fn medium() -> Self {
        Self::new(720, 24, 19)
    }

    /// The large topology used in the paper: `RRG(2880, 48, 38)`.
    pub const fn large() -> Self {
        Self::new(2880, 48, 38)
    }

    /// Compute (host) nodes attached to each switch: `x - y`.
    #[inline]
    pub fn hosts_per_switch(&self) -> usize {
        self.ports - self.network_ports
    }

    /// Total number of compute nodes: `N * (x - y)`.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.switches * self.hosts_per_switch()
    }

    /// Switch that host `h` attaches to (hosts are numbered consecutively
    /// per switch).
    #[inline]
    pub fn switch_of_host(&self, host: usize) -> NodeId {
        debug_assert!(host < self.num_hosts());
        (host / self.hosts_per_switch()) as NodeId
    }

    /// Range of hosts attached to switch `s`.
    #[inline]
    pub fn hosts_of_switch(&self, s: NodeId) -> std::ops::Range<usize> {
        let h = self.hosts_per_switch();
        let s = s as usize;
        s * h..(s + 1) * h
    }

    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<(), RrgError> {
        if self.network_ports == 0 {
            return Err(RrgError::Invalid("network_ports must be >= 1"));
        }
        if self.network_ports >= self.switches {
            return Err(RrgError::Invalid("need y < N for a simple y-regular graph"));
        }
        if self.network_ports > self.ports {
            return Err(RrgError::Invalid("need y <= x"));
        }
        if !(self.switches * self.network_ports).is_multiple_of(2) {
            return Err(RrgError::Invalid("N * y must be even"));
        }
        Ok(())
    }
}

/// How to sample the random regular graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConstructionMethod {
    /// Jellyfish incremental construction with edge-swap repair.
    #[default]
    Incremental,
    /// Configuration (stub pairing) model with 2-swap repair.
    PairingModel,
}

/// Errors from RRG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrgError {
    /// The parameter combination cannot yield a simple regular graph.
    Invalid(&'static str),
    /// Construction failed to converge: every attempt sampled a
    /// disconnected graph or stalled in a repair loop (should not happen
    /// for practical Jellyfish parameters). `attempts` is the number of
    /// full constructions tried before giving up —
    /// [`MAX_BUILD_ATTEMPTS`] unless validation cut the budget short.
    Failed {
        /// Full construction attempts consumed.
        attempts: u64,
    },
}

impl std::fmt::Display for RrgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RrgError::Invalid(msg) => write!(f, "invalid RRG parameters: {msg}"),
            RrgError::Failed { attempts } => {
                write!(f, "RRG construction failed to converge after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RrgError {}

/// Hard cap on full-construction retries in [`build_rrg`]: each retry
/// resamples the whole graph from a derived seed, so near the
/// connectivity threshold (large sparse `N`, small `y`) an unbounded
/// loop could spin for minutes with no signal. Exhausting the budget
/// reports [`RrgError::Failed`] with the attempt count instead.
pub const MAX_BUILD_ATTEMPTS: u64 = 64;

/// Builds a connected `y`-regular random graph for `params` with the given
/// `seed` and construction `method`.
///
/// Retries with derived seeds (up to [`MAX_BUILD_ATTEMPTS`]) if a sample
/// is disconnected or a repair loop stalls; for the paper's topologies
/// the first attempt virtually always succeeds.
pub fn build_rrg(
    params: RrgParams,
    method: ConstructionMethod,
    seed: u64,
) -> Result<Graph, RrgError> {
    params.validate()?;
    for attempt in 0..MAX_BUILD_ATTEMPTS {
        // Mix the attempt into the seed; `wrapping_mul` with an odd constant
        // keeps derived seeds well-separated.
        let s = seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(s);
        let adj = match method {
            ConstructionMethod::Incremental => incremental(&params, &mut rng),
            ConstructionMethod::PairingModel => pairing(&params, &mut rng),
        };
        if let Some(adj) = adj {
            let graph = to_graph(&params, &adj);
            if graph.is_connected() {
                return Ok(graph);
            }
        }
    }
    Err(RrgError::Failed { attempts: MAX_BUILD_ATTEMPTS })
}

/// Working adjacency during construction: unsorted neighbor lists.
type Adj = Vec<Vec<NodeId>>;

fn to_graph(params: &RrgParams, adj: &Adj) -> Graph {
    let mut b = GraphBuilder::new(params.switches);
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if (u as NodeId) < v {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    b.build()
}

#[inline]
fn connected(adj: &Adj, u: NodeId, v: NodeId) -> bool {
    adj[u as usize].contains(&v)
}

fn add(adj: &mut Adj, u: NodeId, v: NodeId) {
    debug_assert!(u != v && !connected(adj, u, v));
    adj[u as usize].push(v);
    adj[v as usize].push(u);
}

fn remove(adj: &mut Adj, u: NodeId, v: NodeId) {
    let pu = adj[u as usize].iter().position(|&x| x == v).expect("edge present");
    adj[u as usize].swap_remove(pu);
    let pv = adj[v as usize].iter().position(|&x| x == u).expect("edge present");
    adj[v as usize].swap_remove(pv);
}

/// Jellyfish incremental construction.
fn incremental(params: &RrgParams, rng: &mut StdRng) -> Option<Adj> {
    let n = params.switches;
    let y = params.network_ports;
    let mut adj: Adj = vec![Vec::with_capacity(y); n];
    // Switches that still have free ports.
    let mut open: Vec<NodeId> = (0..n as NodeId).collect();

    let free = |adj: &Adj, u: NodeId| y - adj[u as usize].len();

    // Phase 1: random pairing of free ports between non-adjacent switches.
    'pairing: loop {
        open.retain(|&u| free(&adj, u) > 0);
        if open.len() < 2 {
            break;
        }
        // Sample random candidate pairs; after enough misses, verify
        // exhaustively whether any valid pair remains.
        for _ in 0..32 {
            let i = rng.random_range(0..open.len());
            let j = rng.random_range(0..open.len());
            if i == j {
                continue;
            }
            let (u, v) = (open[i], open[j]);
            if !connected(&adj, u, v) {
                add(&mut adj, u, v);
                continue 'pairing;
            }
        }
        // Exhaustive check for a remaining valid pair.
        let mut found = None;
        'scan: for (i, &u) in open.iter().enumerate() {
            for &v in &open[i + 1..] {
                if !connected(&adj, u, v) {
                    found = Some((u, v));
                    break 'scan;
                }
            }
        }
        match found {
            Some((u, v)) => add(&mut adj, u, v),
            None => break,
        }
    }

    // Phase 2: edge-swap repair. While some switch has >= 2 free ports,
    // remove a random edge (a, b) with a, b both non-adjacent to p and
    // wire p to both, consuming two of p's free ports.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for _ in 0..4 * n {
        open.retain(|&u| free(&adj, u) > 0);
        let Some(&p) = open.iter().find(|&&u| free(&adj, u) >= 2) else {
            break;
        };
        edges.clear();
        for (u, nbrs) in adj.iter().enumerate() {
            let u = u as NodeId;
            for &v in nbrs {
                if u < v && u != p && v != p && !connected(&adj, p, u) && !connected(&adj, p, v) {
                    edges.push((u, v));
                }
            }
        }
        let &(a, b) = edges.choose(rng)?;
        remove(&mut adj, a, b);
        add(&mut adj, p, a);
        add(&mut adj, p, b);
    }

    // Phase 3: if exactly two distinct switches u, v each hold one free
    // port but are already adjacent, splice them into a random edge pair.
    open.retain(|&u| free(&adj, u) > 0);
    if open.len() == 2 {
        let (u, v) = (open[0], open[1]);
        if !connected(&adj, u, v) {
            add(&mut adj, u, v);
        } else {
            // Find an edge (a, b) with a not adjacent to u, b not adjacent
            // to v; replace (a, b) with (u, a), (v, b).
            let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
            for (a, nbrs) in adj.iter().enumerate() {
                let a = a as NodeId;
                for &b in nbrs {
                    if a != u
                        && a != v
                        && b != u
                        && b != v
                        && !connected(&adj, u, a)
                        && !connected(&adj, v, b)
                    {
                        candidates.push((a, b));
                    }
                }
            }
            let &(a, b) = candidates.choose(rng)?;
            remove(&mut adj, a, b);
            add(&mut adj, u, a);
            add(&mut adj, v, b);
        }
        open.clear();
    }

    if adj.iter().all(|nbrs| nbrs.len() == y) {
        Some(adj)
    } else {
        None
    }
}

/// Configuration (stub pairing) model with 2-swap repair.
fn pairing(params: &RrgParams, rng: &mut StdRng) -> Option<Adj> {
    let n = params.switches;
    let y = params.network_ports;
    // Degenerate densities admit (essentially) one simple graph, which
    // random 2-swaps cannot reach from a conflicted pairing: build it
    // directly. y = n-1 is the complete graph; y = n-2 is the complete
    // graph minus a perfect matching (n is even here, else N*y is odd
    // and validation already rejected it).
    if y >= n - 2 {
        let mut adj: Adj = vec![Vec::with_capacity(y); n];
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if y == n - 2 && v as usize == u as usize + n / 2 {
                    continue; // matched pair left unconnected
                }
                add(&mut adj, u, v);
            }
        }
        return Some(adj);
    }
    let mut stubs: Vec<NodeId> = (0..n as NodeId).flat_map(|u| std::iter::repeat_n(u, y)).collect();
    stubs.shuffle(rng);
    let mut adj: Adj = vec![Vec::with_capacity(y); n];
    // Pair consecutive stubs; collect conflicting pairs for repair.
    let mut bad: Vec<(NodeId, NodeId)> = Vec::new();
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u != v && !connected(&adj, u, v) {
            add(&mut adj, u, v);
        } else {
            bad.push((u, v));
        }
    }
    // Repair: for each conflicting pair, pick a random existing edge and
    // 2-swap with it; retry a bounded number of times.
    let mut attempts = 0usize;
    let max_attempts = 1000 * (bad.len() + 1);
    while let Some(&(u, v)) = bad.last() {
        attempts += 1;
        if attempts > max_attempts {
            return None;
        }
        // Pick a random existing directed edge (a, b).
        let a = rng.random_range(0..n) as NodeId;
        if adj[a as usize].is_empty() {
            continue;
        }
        let b =
            *adj[a as usize].get(rng.random_range(0..adj[a as usize].len())).expect("non-empty");
        // Rewire (u, v), (a, b) -> (u, a), (v, b).
        if u == a || u == b || v == a || v == b {
            continue;
        }
        if connected(&adj, u, a) || connected(&adj, v, b) {
            continue;
        }
        remove(&mut adj, a, b);
        add(&mut adj, u, a);
        add(&mut adj, v, b);
        bad.pop();
    }
    Some(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_host_accounting() {
        let p = RrgParams::medium();
        assert_eq!(p.hosts_per_switch(), 5);
        assert_eq!(p.num_hosts(), 3600);
        assert_eq!(p.switch_of_host(0), 0);
        assert_eq!(p.switch_of_host(5), 1);
        assert_eq!(p.switch_of_host(3599), 719);
        assert_eq!(p.hosts_of_switch(1), 5..10);
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(RrgParams::new(10, 4, 0).validate().is_err());
        assert!(RrgParams::new(4, 8, 5).validate().is_err()); // y >= N
        assert!(RrgParams::new(10, 4, 5).validate().is_err()); // y > x
        assert!(RrgParams::new(5, 4, 3).validate().is_err()); // N*y odd
        assert!(RrgParams::new(10, 4, 3).validate().is_ok());
    }

    #[test]
    fn incremental_builds_regular_connected_graph() {
        let p = RrgParams::new(36, 24, 16);
        let g = build_rrg(p, ConstructionMethod::Incremental, 1).unwrap();
        assert_eq!(g.num_nodes(), 36);
        assert!(g.is_regular(16));
        assert!(g.is_connected());
    }

    #[test]
    fn pairing_builds_regular_connected_graph() {
        let p = RrgParams::new(36, 24, 16);
        let g = build_rrg(p, ConstructionMethod::PairingModel, 7).unwrap();
        assert!(g.is_regular(16));
        assert!(g.is_connected());
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let p = RrgParams::new(20, 6, 4);
        let a = build_rrg(p, ConstructionMethod::Incremental, 42).unwrap();
        let b = build_rrg(p, ConstructionMethod::Incremental, 42).unwrap();
        assert_eq!(a, b);
        let c = build_rrg(p, ConstructionMethod::Incremental, 43).unwrap();
        assert_ne!(a, c, "different seeds should give different instances");
    }

    #[test]
    fn many_seeds_small_degree() {
        // Low-degree small graphs exercise the repair phases the hardest.
        let p = RrgParams::new(8, 4, 3);
        for seed in 0..50 {
            let g = build_rrg(p, ConstructionMethod::Incremental, seed).unwrap();
            assert!(g.is_regular(3), "seed {seed} not regular");
            assert!(g.is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn pairing_many_seeds() {
        let p = RrgParams::new(8, 4, 3);
        for seed in 0..50 {
            let g = build_rrg(p, ConstructionMethod::PairingModel, seed).unwrap();
            assert!(g.is_regular(3));
            assert!(g.is_connected());
        }
    }

    #[test]
    fn medium_topology_builds() {
        let g = build_rrg(RrgParams::medium(), ConstructionMethod::Incremental, 3).unwrap();
        assert!(g.is_regular(19));
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 720 * 19 / 2);
    }

    #[test]
    fn complete_graph_edge_case() {
        // y = N - 1 forces the complete graph.
        let p = RrgParams::new(6, 8, 5);
        let g = build_rrg(p, ConstructionMethod::Incremental, 0).unwrap();
        assert!(g.is_regular(5));
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn hopeless_parameters_fail_bounded_with_attempt_count() {
        // RRG(4, y=1) is always a perfect matching — two components, no
        // repair possible — so every attempt samples a disconnected
        // graph. The loop must terminate deterministically at the budget
        // and report how many constructions it burned, instead of
        // spinning or failing silently.
        let p = RrgParams::new(4, 2, 1);
        for method in [ConstructionMethod::Incremental, ConstructionMethod::PairingModel] {
            for seed in [0, 1, 0xDEAD] {
                let err = build_rrg(p, method, seed).unwrap_err();
                assert_eq!(err, RrgError::Failed { attempts: MAX_BUILD_ATTEMPTS });
                assert!(err.to_string().contains("64 attempts"), "diagnostic: {err}");
            }
        }
    }

    #[test]
    fn pairing_handles_near_complete_graphs() {
        // Regression: random 2-swap repair cannot fix a conflicted stub
        // pairing when the target is (nearly) complete; these densities
        // are built directly.
        let k7 = build_rrg(RrgParams::new(7, 8, 6), ConstructionMethod::PairingModel, 0).unwrap();
        assert!(k7.is_regular(6));
        assert_eq!(k7.num_edges(), 21);
        let near = build_rrg(RrgParams::new(8, 8, 6), ConstructionMethod::PairingModel, 0).unwrap();
        assert!(near.is_regular(6));
        assert!(near.is_connected());
        assert_eq!(near.num_edges(), 24);
    }
}
