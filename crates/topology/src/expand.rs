//! Incremental Jellyfish expansion: grow a live RRG by adding switches
//! with bounded recabling.
//!
//! This is the headline operational scenario of the Jellyfish paper
//! (Singla et al., NSDI'12 §2): to add a switch `u` to a running
//! `y`-regular fabric, pick `⌊y/2⌋` random existing links `(a, b)`,
//! unplug each and plug both ends into `u` — removing one link and
//! adding two (`(u, a)`, `(u, b)`) per splice, which consumes two of
//! `u`'s network ports and leaves every existing switch at degree `y`.
//! For odd `y`, each new switch is left with one free port; those are
//! paired among the new switches themselves (splicing into an existing
//! link when two leftover switches are already adjacent).
//!
//! Splicing preserves connectivity (the removed link `(a, b)` is
//! re-routed through `u`), so the expanded fabric is connected and
//! `y`-regular by construction; both properties are still verified
//! before returning. The whole procedure is seeded and deterministic,
//! and retries with derived seeds (the same [`MAX_BUILD_ATTEMPTS`]
//! budget as [`build_rrg`]) in the rare event a splice runs out of
//! candidate links.

use crate::graph::{Graph, NodeId};
use crate::rrg::{RrgError, RrgParams, MAX_BUILD_ATTEMPTS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Result of [`expand_rrg`]: the grown graph plus the net recabling it
/// took to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expansion {
    /// The expanded, connected, `y`-regular graph on
    /// `params.switches` nodes.
    pub graph: Graph,
    /// Parameters of the expanded fabric (`switches` grew; ports per
    /// switch are unchanged).
    pub params: RrgParams,
    /// Links of the *original* graph that must be unplugged, sorted.
    /// Intermediate links added and then re-spliced within the same
    /// expansion are netted out.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Links absent from the original graph that must be plugged in,
    /// sorted.
    pub added_edges: Vec<(NodeId, NodeId)>,
}

impl Expansion {
    /// Total cabling operations: links to unplug plus links to plug in.
    pub fn recabling_ops(&self) -> usize {
        self.removed_edges.len() + self.added_edges.len()
    }
}

/// Working adjacency + edge list during expansion.
struct Working {
    adj: Vec<Vec<NodeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Working {
    fn from_graph(graph: &Graph, new_n: usize) -> Self {
        let mut adj = vec![Vec::new(); new_n];
        let mut edges = Vec::with_capacity(graph.num_edges() + new_n);
        for (u, v) in graph.edges() {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            edges.push((u, v));
        }
        Self { adj, edges }
    }

    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].contains(&v)
    }

    fn add(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u != v && !self.connected(u, v));
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Removes the edge at `edges[idx]` from both structures.
    fn remove_at(&mut self, idx: usize) -> (NodeId, NodeId) {
        let (a, b) = self.edges.swap_remove(idx);
        let pa = self.adj[a as usize].iter().position(|&x| x == b).expect("edge present");
        self.adj[a as usize].swap_remove(pa);
        let pb = self.adj[b as usize].iter().position(|&x| x == a).expect("edge present");
        self.adj[b as usize].swap_remove(pb);
        (a, b)
    }

    /// Splices node `u` into the edge at `edges[idx]`: `(a, b)` becomes
    /// `(u, a)`, `(u, b)`.
    fn splice(&mut self, u: NodeId, idx: usize) -> (NodeId, NodeId) {
        let (a, b) = self.remove_at(idx);
        self.add(u, a);
        self.add(u, b);
        (a, b)
    }

    /// A random edge whose endpoints are both splicable onto `u`
    /// (neither is `u` nor already adjacent to it). Random draws first,
    /// exhaustive scan as a fallback so "no candidate" is definitive.
    fn pick_splice(&self, u: NodeId, rng: &mut StdRng) -> Option<usize> {
        for _ in 0..64 {
            let idx = rng.random_range(0..self.edges.len());
            let (a, b) = self.edges[idx];
            if a != u && b != u && !self.connected(u, a) && !self.connected(u, b) {
                return Some(idx);
            }
        }
        self.edges
            .iter()
            .position(|&(a, b)| a != u && b != u && !self.connected(u, a) && !self.connected(u, b))
    }
}

/// Grows the `y`-regular fabric `graph` (built for `params`) by `add`
/// switches, splicing each new switch into random existing links.
///
/// Returns the expanded graph and the net recabling. Deterministic per
/// `seed`; independent of the seed the original graph was built with.
///
/// # Errors
/// - [`RrgError::Invalid`] when the expanded parameter set cannot be a
///   simple connected `y`-regular graph (including `add == 0`).
/// - [`RrgError::Failed`] when every seeded attempt ran out of splice
///   candidates (practically unreachable for `N ≫ y`).
///
/// # Panics
/// Panics if `graph` does not match `params` (wrong node count or not
/// `y`-regular).
pub fn expand_rrg(
    graph: &Graph,
    params: RrgParams,
    add: usize,
    seed: u64,
) -> Result<Expansion, RrgError> {
    let y = params.network_ports;
    assert_eq!(graph.num_nodes(), params.switches, "graph/params mismatch");
    assert!(graph.is_regular(y), "expansion requires a y-regular fabric");
    if add == 0 {
        return Err(RrgError::Invalid("expansion must add at least one switch"));
    }
    let new_params = RrgParams { switches: params.switches + add, ..params };
    new_params.validate()?;
    if !graph.is_connected() {
        return Err(RrgError::Invalid("cannot expand a disconnected fabric"));
    }

    let old_n = params.switches;
    let new_n = new_params.switches;
    for attempt in 0..MAX_BUILD_ATTEMPTS {
        let s = seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(s);
        if let Some(exp) = try_expand(graph, new_params, old_n, new_n, &mut rng) {
            return Ok(exp);
        }
    }
    Err(RrgError::Failed { attempts: MAX_BUILD_ATTEMPTS })
}

fn try_expand(
    graph: &Graph,
    new_params: RrgParams,
    old_n: usize,
    new_n: usize,
    rng: &mut StdRng,
) -> Option<Expansion> {
    let y = new_params.network_ports;
    let mut w = Working::from_graph(graph, new_n);
    let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
    let mut added: Vec<(NodeId, NodeId)> = Vec::new();

    // Each new switch claims ⌊y/2⌋ random links.
    for u in old_n as NodeId..new_n as NodeId {
        for _ in 0..y / 2 {
            let idx = w.pick_splice(u, rng)?;
            let (a, b) = w.splice(u, idx);
            removed.push((a.min(b), a.max(b)));
            added.push((u.min(a), u.max(a)));
            added.push((u.min(b), u.max(b)));
        }
    }

    // Odd y: every new switch still holds one free port. Pair them
    // among the new switches (shuffled), splicing into an existing link
    // when a pair is already adjacent.
    if y % 2 == 1 {
        let mut leftover: Vec<NodeId> = (old_n as NodeId..new_n as NodeId).collect();
        leftover.shuffle(rng);
        for pair in leftover.chunks_exact(2) {
            let (p, q) = (pair[0], pair[1]);
            if !w.connected(p, q) {
                w.add(p, q);
                added.push((p.min(q), p.max(q)));
            } else {
                // Replace some link (a, b) with (p, a), (q, b).
                let idx = w.edges.iter().position(|&(a, b)| {
                    a != p && a != q && b != p && b != q && !w.connected(p, a) && !w.connected(q, b)
                })?;
                let (a, b) = w.remove_at(idx);
                w.add(p, a);
                w.add(q, b);
                removed.push((a.min(b), a.max(b)));
                added.push((p.min(a), p.max(a)));
                added.push((q.min(b), q.max(b)));
            }
        }
    }

    if w.adj.iter().any(|nbrs| nbrs.len() != y) {
        return None;
    }
    let expanded = Graph::from_edges(new_n, &w.edges);
    if !expanded.is_connected() {
        return None;
    }

    // Net out links that were added and later re-spliced away within
    // this same expansion: the operator only cares about the diff
    // against the original fabric.
    let removed_set: HashSet<(NodeId, NodeId)> = removed.into_iter().collect();
    let added_set: HashSet<(NodeId, NodeId)> = added.into_iter().collect();
    let mut removed_edges: Vec<(NodeId, NodeId)> =
        removed_set.difference(&added_set).copied().collect();
    let mut added_edges: Vec<(NodeId, NodeId)> =
        added_set.difference(&removed_set).copied().collect();
    // An added edge may itself have been removed by a later splice:
    // keep only edges actually present in exactly one of the graphs.
    let in_original =
        |a: NodeId, b: NodeId| (a as usize) < old_n && (b as usize) < old_n && graph.has_edge(a, b);
    removed_edges.retain(|&(a, b)| !expanded.has_edge(a, b));
    added_edges.retain(|&(a, b)| !in_original(a, b));
    removed_edges.sort_unstable();
    added_edges.sort_unstable();

    Some(Expansion { graph: expanded, params: new_params, removed_edges, added_edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrg::{build_rrg, ConstructionMethod};

    fn fabric(n: usize, y: usize, seed: u64) -> (Graph, RrgParams) {
        let p = RrgParams::new(n, y + 5, y);
        (build_rrg(p, ConstructionMethod::Incremental, seed).unwrap(), p)
    }

    #[test]
    fn expansion_keeps_the_fabric_regular_and_connected() {
        for (n, y, add) in [(16, 4, 1), (16, 4, 3), (20, 6, 5), (12, 3, 2)] {
            let (g, p) = fabric(n, y, 7);
            let exp = expand_rrg(&g, p, add, 11).unwrap();
            assert_eq!(exp.graph.num_nodes(), n + add);
            assert!(exp.graph.is_regular(y), "N={n} y={y} add={add} not regular");
            assert!(exp.graph.is_connected());
            assert_eq!(exp.params.switches, n + add);
        }
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        let (g, p) = fabric(16, 4, 3);
        let a = expand_rrg(&g, p, 2, 5).unwrap();
        let b = expand_rrg(&g, p, 2, 5).unwrap();
        assert_eq!(a, b);
        let c = expand_rrg(&g, p, 2, 6).unwrap();
        assert_ne!(a.graph, c.graph, "different seeds should recable differently");
    }

    #[test]
    fn recabling_diff_is_exact() {
        let (g, p) = fabric(18, 4, 1);
        let exp = expand_rrg(&g, p, 2, 9).unwrap();
        // Removed ⊆ original, gone from the result; added ⊆ result,
        // absent from the original.
        for &(a, b) in &exp.removed_edges {
            assert!(g.has_edge(a, b) && !exp.graph.has_edge(a, b));
        }
        for &(a, b) in &exp.added_edges {
            assert!(!g.has_edge(a, b) && exp.graph.has_edge(a, b));
        }
        // The diff is complete: original minus removed plus added is
        // exactly the expanded edge set.
        let mut want: std::collections::BTreeSet<(NodeId, NodeId)> =
            g.edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
        for e in &exp.removed_edges {
            assert!(want.remove(e));
        }
        for &e in &exp.added_edges {
            assert!(want.insert(e));
        }
        let got: std::collections::BTreeSet<(NodeId, NodeId)> =
            exp.graph.edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
        assert_eq!(want, got);
        // Even y: each new switch costs exactly ⌊y/2⌋ unplugs.
        assert_eq!(exp.recabling_ops(), exp.removed_edges.len() + exp.added_edges.len());
    }

    #[test]
    fn bounded_recabling_even_y() {
        // Each new switch splices ⌊y/2⌋ links: at most ⌊y/2⌋ removals
        // and y additions per switch, regardless of fabric size.
        let (g, p) = fabric(24, 6, 2);
        let add = 3;
        let exp = expand_rrg(&g, p, add, 4).unwrap();
        assert!(exp.removed_edges.len() <= add * (p.network_ports / 2));
        assert!(exp.added_edges.len() <= add * p.network_ports);
    }

    #[test]
    fn invalid_expansions_are_rejected() {
        let (g, p) = fabric(16, 4, 3);
        assert!(matches!(expand_rrg(&g, p, 0, 1), Err(RrgError::Invalid(_))));
        // Odd y with odd add makes (N + add) * y odd.
        let (g3, p3) = fabric(12, 3, 2);
        assert!(matches!(expand_rrg(&g3, p3, 1, 1), Err(RrgError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "y-regular")]
    fn irregular_fabric_is_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let _ = expand_rrg(&g, RrgParams::new(4, 6, 2), 2, 0);
    }
}
