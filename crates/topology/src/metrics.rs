//! Topology metrics reported in the paper (Table I).
//!
//! All metrics operate at the *switch* level: the average shortest path
//! length in Table I is the mean hop count over all ordered switch pairs.

use crate::graph::{Graph, NodeId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Distance not reachable marker used by the BFS kernels.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (hop counts) from `src`.
pub fn bfs_distances(graph: &Graph, src: NodeId) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Summary statistics of a topology (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Number of switches.
    pub switches: usize,
    /// Number of undirected switch-to-switch links.
    pub edges: usize,
    /// Mean hop count over all ordered switch pairs.
    pub avg_shortest_path_len: f64,
    /// Maximum shortest-path hop count (graph diameter).
    pub diameter: u32,
}

/// Computes [`TopologyStats`] via all-sources BFS (parallelized with rayon).
pub fn topology_stats(graph: &Graph) -> TopologyStats {
    let n = graph.num_nodes();
    if n < 2 {
        return TopologyStats {
            switches: n,
            edges: graph.num_edges(),
            avg_shortest_path_len: 0.0,
            diameter: 0,
        };
    }
    let (sum, max) = (0..n as NodeId)
        .into_par_iter()
        .map(|src| {
            let dist = bfs_distances(graph, src);
            let mut s = 0u64;
            let mut m = 0u32;
            for &d in &dist {
                assert_ne!(d, UNREACHABLE, "topology_stats requires a connected graph");
                s += d as u64;
                m = m.max(d);
            }
            (s, m)
        })
        .reduce(|| (0u64, 0u32), |a, b| (a.0 + b.0, a.1.max(b.1)));
    TopologyStats {
        switches: n,
        edges: graph.num_edges(),
        avg_shortest_path_len: sum as f64 / (n as f64 * (n as f64 - 1.0)),
        diameter: max,
    }
}

/// Average shortest path length over all ordered switch pairs.
pub fn average_shortest_path_length(graph: &Graph) -> f64 {
    topology_stats(graph).avg_shortest_path_len
}

/// Graph diameter in hops.
pub fn diameter(graph: &Graph) -> u32 {
    topology_stats(graph).diameter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrg::{build_rrg, ConstructionMethod, RrgParams};

    #[test]
    fn bfs_on_path_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn stats_on_cycle() {
        // 4-cycle: distances from any node are 0,1,2,1 -> avg = 4/3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let s = topology_stats(&g);
        assert_eq!(s.diameter, 2);
        assert!((s.avg_shortest_path_len - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_complete_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let s = topology_stats(&g);
        assert_eq!(s.diameter, 1);
        assert_eq!(s.avg_shortest_path_len, 1.0);
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::from_edges(1, &[]);
        let s = topology_stats(&g);
        assert_eq!(s.avg_shortest_path_len, 0.0);
        assert_eq!(s.diameter, 0);
    }

    #[test]
    fn small_rrg_matches_paper_ballpark() {
        // Table I: RRG(36, 24, 16) has average shortest path length 1.54.
        // Individual instances vary slightly; accept a tight band.
        let g = build_rrg(RrgParams::small(), ConstructionMethod::Incremental, 11).unwrap();
        let s = topology_stats(&g);
        assert!(
            (1.45..1.65).contains(&s.avg_shortest_path_len),
            "avg spl {} out of expected band",
            s.avg_shortest_path_len
        );
        assert!(s.diameter <= 3);
    }
}
