//! Property-based tests for the graph substrate: CSR layout, link-id
//! bijection, and connectivity against a union-find oracle.

use jellyfish_topology::{Graph, GraphBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random simple edge list over up to 24 nodes.
fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..60).prop_map(move |raw| {
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for (a, b) in raw {
                    if a == b {
                        continue;
                    }
                    let e = (a.min(b), a.max(b));
                    if seen.insert(e) {
                        out.push(e);
                    }
                }
                out
            });
        (Just(n), edges)
    })
}

/// Tiny union-find for the connectivity oracle.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Self {
        Uf((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let r = self.find(self.0[x]);
            self.0[x] = r;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.0[ra] = rb;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_preserves_edge_set((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        prop_assert_eq!(g.num_edges(), edges.len());
        let set: HashSet<(u32, u32)> = edges.iter().copied().collect();
        // Every listed edge is present, in both directions.
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
        // No phantom edges.
        let recovered: HashSet<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(recovered, set);
    }

    #[test]
    fn link_ids_are_a_bijection((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        let mut seen = HashSet::new();
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                let l = g.link_id(u, v).expect("adjacent");
                prop_assert!(seen.insert(l), "duplicate link id {l}");
                prop_assert_eq!(g.link_src(l), u);
                prop_assert_eq!(g.link_dst(l), v);
                // reverse is an involution.
                let r = g.reverse_link(l);
                prop_assert_eq!(g.reverse_link(r), l);
            }
        }
        prop_assert_eq!(seen.len(), g.num_links());
        prop_assert!(seen.iter().all(|&l| (l as usize) < g.num_links()));
    }

    #[test]
    fn degrees_sum_to_twice_edges((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        let total: usize = (0..n as u32).map(|u| g.degree(u)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn connectivity_matches_union_find((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        let mut uf = Uf::new(n);
        for &(u, v) in &edges {
            uf.union(u as usize, v as usize);
        }
        let root = uf.find(0);
        let connected = (1..n).all(|v| uf.find(v) == root);
        prop_assert_eq!(g.is_connected(), connected);
    }

    #[test]
    fn builder_and_from_edges_agree((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        prop_assert_eq!(b.build(), Graph::from_edges(n, &edges));
    }
}
