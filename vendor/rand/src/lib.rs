//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) surface the workspace actually uses: a seeded
//! [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits, and the slice
//! helpers in [`seq`]. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic across platforms and runs, which is all the
//! reproduction needs (statistical quality is far beyond the workloads'
//! demands; cryptographic strength is explicitly *not* provided).

/// Concrete RNG types.
pub mod rngs {
    /// The workspace's standard seeded RNG: xoshiro256++.
    ///
    /// Unlike the upstream `StdRng` (ChaCha12) this is not
    /// cryptographically secure; every use in this workspace is a seeded
    /// simulation where only determinism and uniformity matter.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

/// Types samplable from the "standard" distribution (`Rng::random`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Slice sampling and shuffling helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform random element selection from slices.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let x: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_uniform_and_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [1, 2, 3];
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "{hits}");
    }
}
