//! Offline vendored no-op derive macros for `serde`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! decoration — all actual persistence is hand-rolled text/JSON (see
//! `jellyfish-routing::serialize` and `jellyfish-topology::fault`). These
//! derives therefore emit empty marker-trait impls, which keeps every
//! type's derive list compiling without a crates.io dependency.
//!
//! Implemented without `syn`/`quote`: the input token stream is scanned
//! for the item name and generic parameter list, which is enough for
//! marker impls (empty traits need no field bounds).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed generic parameter.
struct GenericParam {
    /// Full declaration including bounds, e.g. `T: Clone` or `'a` or
    /// `const N: usize` (defaults stripped).
    decl: String,
    /// Bare name used as the type argument, e.g. `T`, `'a`, `N`.
    name: String,
}

struct Parsed {
    name: String,
    generics: Vec<GenericParam>,
}

fn token_to_string(t: &TokenTree) -> String {
    t.to_string()
}

/// Extracts the item name and generics from a struct/enum/union
/// definition token stream.
fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let keyword = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [group]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break s;
                }
                i += 1;
            }
            _ => i += 1,
        }
    };
    let _ = keyword;
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected item name, found {other}"),
    };
    i += 1;
    // Optional generics `< ... >`.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut current: Vec<String> = Vec::new();
            let mut params: Vec<Vec<String>> = Vec::new();
            while depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        current.push("<".into());
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            current.push(">".into());
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        params.push(std::mem::take(&mut current));
                    }
                    t => current.push(token_to_string(t)),
                }
                i += 1;
            }
            if !current.is_empty() {
                params.push(current);
            }
            for param in params {
                // Strip a trailing `= default`.
                let cut = param.iter().position(|t| t == "=").unwrap_or(param.len());
                let decl_tokens = &param[..cut];
                let decl = decl_tokens.join(" ");
                let name = if decl_tokens.first().map(String::as_str) == Some("const") {
                    decl_tokens[1].clone()
                } else {
                    decl_tokens[0].clone()
                };
                generics.push(GenericParam { decl, name });
            }
        }
    }
    Parsed { name, generics }
}

fn marker_impl(input: TokenStream, lifetimed: bool, trait_path: &str) -> TokenStream {
    let parsed = parse_item(input);
    let mut impl_params: Vec<String> = Vec::new();
    if lifetimed {
        impl_params.push("'de".to_string());
    }
    impl_params.extend(parsed.generics.iter().map(|g| g.decl.clone()));
    let args: Vec<String> = parsed.generics.iter().map(|g| g.name.clone()).collect();
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let trait_args = if lifetimed { "<'de>" } else { "" };
    let type_args = if args.is_empty() { String::new() } else { format!("<{}>", args.join(", ")) };
    format!("impl{impl_generics} {trait_path}{trait_args} for {}{type_args} {{}}", parsed.name)
        .parse()
        .expect("derive: generated impl must parse")
}

/// No-op `Serialize` derive: emits an empty marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false, "::serde::Serialize")
}

/// No-op `Deserialize` derive: emits an empty marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true, "::serde::Deserialize")
}
