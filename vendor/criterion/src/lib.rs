//! Offline vendored mini-criterion.
//!
//! Provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! chaining, [`Bencher::iter`], [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! wall-clock mean over a fixed iteration budget — no warm-up modelling,
//! outlier analysis, or HTML reports. Good enough to run the benches and
//! print per-benchmark timings; not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    /// Iterations used to estimate per-iteration time.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    /// Sets the default sample size for subsequent groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", name, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub times a fixed iteration
    /// count rather than a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; no separate warm-up phase runs.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the iteration count used for timing in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.name, id, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{function_name}/{parameter}") }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size.max(1) as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {full}: {:.3} us/iter ({} iters)", per_iter * 1e6, b.iters);
}

/// Groups benchmark functions under one entry point, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $($group_name();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(1)).warm_up_time(Duration::from_millis(1));
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn group_runs_all_benchmarks() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("KSP").to_string(), "KSP");
    }
}
