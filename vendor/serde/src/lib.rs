//! Offline vendored `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` as decoration but does
//! all real persistence through hand-rolled text/JSON formats, so these
//! are empty marker traits paired with no-op derive macros from the
//! vendored `serde_derive`. If a future PR needs real serde data-model
//! serialization, this facade is the place to grow it.

// Let the derive-emitted `::serde::*` paths resolve inside this crate's
// own tests.
extern crate self as serde;

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _a: u32,
        _b: Vec<f64>,
    }

    #[derive(Serialize, Deserialize)]
    pub(crate) enum WithVariants {
        _A,
        _B(u32),
        _C { _x: f64 },
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T: Clone, const N: usize> {
        _items: [T; N],
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Tuple(u8, u16);

    fn assert_ser<T: Serialize>() {}
    fn assert_de<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_ser::<Plain>();
        assert_de::<Plain>();
        assert_ser::<WithVariants>();
        assert_ser::<Generic<u8, 3>>();
        assert_ser::<Tuple>();
        assert_de::<Tuple>();
    }
}
