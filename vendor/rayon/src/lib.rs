//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the parallel-iterator surface the workspace uses — `par_iter`,
//! `into_par_iter`, `map`, `flat_map_iter`, `reduce`, `sum`, `collect` —
//! executed on scoped OS threads (`std::thread::scope`) instead of a
//! work-stealing pool. Inputs are materialized up front and split into
//! order-preserving chunks, several per thread so heterogeneous tasks
//! still balance reasonably; results concatenate in input order, keeping
//! every existing "independent of scheduling order" guarantee intact.

use std::collections::HashMap;
use std::hash::Hash;

/// Everything user code imports.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads used for parallel evaluation.
///
/// Honors `RAYON_NUM_THREADS` (like real rayon's default pool) so tests
/// can force serial or fixed-width execution; otherwise the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item on scoped threads, preserving input order.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Several chunks per thread so one slow chunk cannot serialize the
    // whole batch.
    let chunk = len.div_ceil(threads * 4).max(1);
    let mut chunks: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(len.div_ceil(chunk));
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            handles.push(scope.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()));
        }
        for h in handles {
            chunks.push(h.join().expect("parallel worker panicked"));
        }
    });
    chunks.into_iter().flatten().collect()
}

/// A parallel iterator: a lazily composed pipeline evaluated by [`run`].
///
/// [`run`]: ParallelIterator::run
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Evaluates the pipeline in parallel, preserving input order.
    fn run(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Parallel map producing a serial iterator per item, flattened.
    fn flat_map_iter<R, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        R: IntoIterator,
        R::Item: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Parallel filter.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Reduction with an identity constructor (rayon signature).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Sum of all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.run().into_iter().sum()
    }

    /// Item count.
    fn count(self) -> usize {
        self.run().len()
    }

    /// Collects into a container.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_items(self.run())
    }
}

/// Source stage: pre-materialized items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), self.f)
    }
}

/// `flat_map_iter` adapter.
pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    R: IntoIterator,
    R::Item: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R::Item;
    fn run(self) -> Vec<R::Item> {
        let f = self.f;
        par_apply(self.base.run(), |x| f(x).into_iter().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `filter` adapter.
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;
    fn run(self) -> Vec<B::Item> {
        let f = self.f;
        par_apply(self.base.run(), |x| if f(&x) { Some(x) } else { None })
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion of owned collections into parallel iterators.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The source stage type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Starts the pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_source!(u16, u32, u64, usize, i32, i64);

/// Conversion of borrowed collections into parallel iterators over `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// The source stage type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Starts the pipeline over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Containers collectable from a parallel pipeline.
pub trait FromParallelIterator<T> {
    /// Builds the container from the ordered item vector.
    fn from_par_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_items(items: Vec<T>) -> Self {
        items
    }
}

impl<K: Eq + Hash, V> FromParallelIterator<(K, V)> for HashMap<K, V> {
    fn from_par_items(items: Vec<(K, V)>) -> Self {
        items.into_iter().collect()
    }
}

impl<K: Ord, V> FromParallelIterator<(K, V)> for std::collections::BTreeMap<K, V> {
    fn from_par_items(items: Vec<(K, V)>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let data: Vec<u32> = (0..500).collect();
        let s: u32 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 500 * 499 / 2);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let v: Vec<u32> = (0u32..100).into_par_iter().flat_map_iter(|x| [x, x]).collect();
        assert_eq!(v.len(), 200);
        assert_eq!(&v[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn reduce_with_identity() {
        let (sum, max) = (0u32..1000)
            .into_par_iter()
            .map(|x| (x as u64, x))
            .reduce(|| (0u64, 0u32), |a, b| (a.0 + b.0, a.1.max(b.1)));
        assert_eq!(sum, 1000 * 999 / 2);
        assert_eq!(max, 999);
    }

    #[test]
    fn collect_into_hashmap() {
        let m: std::collections::HashMap<u32, u32> =
            (0u32..100).into_par_iter().map(|x| (x, x * x)).collect();
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 49);
    }

    #[test]
    fn filter_drops_items() {
        let v: Vec<u32> = (0u32..100).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(v.len(), 50);
        assert!(v.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn empty_and_single_inputs() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let w: Vec<u32> = vec![3u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(w, vec![4]);
    }
}
