//! Offline vendored mini-proptest.
//!
//! Deterministic property testing with the subset of the proptest API the
//! workspace uses: [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_filter_map`, [`any`], range and tuple strategies,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` macro with
//! `#![proptest_config(...)]`. Differences from upstream:
//!
//! * **No shrinking** — a failing case panics with its case index and the
//!   generated inputs' debug output is up to the assertion message.
//! * **Fully deterministic** — the RNG seed derives from the test
//!   function's name, so failures reproduce without a regressions file
//!   (`.proptest-regressions` files are ignored).

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over a string — seeds the per-test RNG from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator. `generate` returns `None` when a filter rejects the
/// sample; the runner retries with fresh randomness.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generates one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy it maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values satisfying `pred`; `reason` is reported if the
    /// filter starves the runner.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, pred, reason }
    }

    /// Combined filter + map.
    fn prop_filter_map<R, F: Fn(Self::Value) -> Option<R>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { base: self, f, reason }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, R, F: Fn(B::Value) -> R> Strategy for Map<B, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> Option<R> {
        self.base.generate(rng).map(&self.f)
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        let inner = (self.f)(self.base.generate(rng)?);
        inner.generate(rng)
    }
}

/// `prop_filter` adapter.
pub struct Filter<B, F> {
    base: B,
    pred: F,
    #[allow(dead_code)]
    reason: &'static str,
}

impl<B: Strategy, F: Fn(&B::Value) -> bool> Strategy for Filter<B, F> {
    type Value = B::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<B::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// `prop_filter_map` adapter.
pub struct FilterMap<B, F> {
    base: B,
    f: F,
    #[allow(dead_code)]
    reason: &'static str,
}

impl<B: Strategy, R, F: Fn(B::Value) -> Option<R>> Strategy for FilterMap<B, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> Option<R> {
        self.base.generate(rng).and_then(&self.f)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Object-safe strategy view backing [`BoxedStrategy`].
trait StrategyObj<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn StrategyObj<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy over a type's full domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + v as i128) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                Some((lo as i128 + v as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        Some(self.start + unit * (self.end - self.start))
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        Some(self.start + unit as f32 * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import users write.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::fnv1a(stringify!($name)));
                let mut case = 0u32;
                while case < config.cases {
                    $(
                        let $pat = {
                            let mut rejects = 0u32;
                            loop {
                                match $crate::Strategy::generate(&($strat), &mut rng) {
                                    Some(v) => break v,
                                    None => {
                                        rejects += 1;
                                        assert!(
                                            rejects < 100_000,
                                            "strategy for {} starved by its filters",
                                            stringify!($name)
                                        );
                                    }
                                }
                            }
                        };
                    )+
                    $body
                    case += 1;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let (a, b) = (3usize..9, 0u32..4).generate(&mut rng).unwrap();
            assert!((3..9).contains(&a));
            assert!(b < 4);
        }
    }

    #[test]
    fn filter_map_rejects_and_accepts() {
        let s = (0u32..10).prop_filter_map("even", |x| (x % 2 == 0).then_some(x * 100));
        let mut rng = crate::TestRng::new(2);
        let mut accepted = 0;
        for _ in 0..200 {
            if let Some(v) = s.generate(&mut rng) {
                assert_eq!(v % 200, 0);
                accepted += 1;
            }
        }
        assert!(accepted > 50);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collection_vec_respects_size() {
        let s = crate::collection::vec(0u32..5, 2usize..6);
        let mut rng = crate::TestRng::new(4);
        for _ in 0..100 {
            let v = s.generate(&mut rng).unwrap();
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_binds_patterns((a, b) in (0usize..10, 0usize..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = flip;
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n..n + 1))) {
            let n = v.len();
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
