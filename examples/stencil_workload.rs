//! Stencil workload: runs a 2D nearest-neighbor exchange (the paper's
//! 2DNN application) through the trace-driven simulator under linear and
//! random mappings — a miniature of Tables V and VI.
//!
//! ```text
//! cargo run --release --example stencil_workload
//! ```

use jellyfish::prelude::*;
use jellyfish::JellyfishNetwork;
use jellyfish_traffic::stencil_trace;

fn main() {
    // 144 switches x 5 hosts = 720 ranks in a 30 x 24 process grid.
    let params = RrgParams::new(144, 24, 19);
    let net = JellyfishNetwork::build(params, 4).expect("RRG construction");
    let ranks = params.num_hosts();
    let app = StencilApp::for_ranks(StencilKind::Nn2d, ranks).expect("grid factorization");
    let [nx, ny, _] = app.dims();
    println!("2DNN over a {nx} x {ny} process grid on RRG(144,24,19); 1.5 MB per rank\n");

    let bytes_per_rank = 1_500_000;
    println!("{:<18} {:>12} {:>12} {:>12}", "mapping", "KSP(8)", "rKSP(8)", "rEDKSP(8)");
    for mapping in [Mapping::Linear, Mapping::Random { seed: 99 }] {
        let trace = stencil_trace(&app, mapping, bytes_per_rank, ranks);
        print!("{:<18}", mapping.name());
        for sel in [PathSelection::Ksp(8), PathSelection::RKsp(8), PathSelection::REdKsp(8)] {
            let pairs = PairSet::Pairs(switch_pairs(&trace.host_flows(), &params));
            let table = net.paths(sel, &pairs, 7);
            let r = net.simulate_trace(
                &table,
                AppMechanism::KspAdaptive,
                &trace,
                AppSimConfig::paper(),
            );
            print!(" {:>10.3}ms", r.completion_time_s * 1e3);
        }
        println!();
    }
    println!("\nExpected shape (paper Tables V-VI): rEDKSP(8) finishes first; the");
    println!("gap over vanilla KSP(8) is larger than over rKSP(8).");
}
