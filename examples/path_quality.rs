//! Path-quality deep dive: reproduces the paper's Figure 3 walkthrough on
//! its exact example topology, then contrasts the four selection schemes
//! on a real RRG (Tables II–IV in miniature).
//!
//! ```text
//! cargo run --release --example path_quality
//! ```

use jellyfish::prelude::*;
use jellyfish::routing::{edge_disjoint_paths, k_shortest_paths, shortest_path, Mask, TieBreak};
use jellyfish::JellyfishNetwork;
use jellyfish_topology::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The topology of the paper's Figure 3. Labels: S1=0, A=1, B=2, C=3,
/// E=4, F=5, G=6, H=7, I=8, D1=9.
fn figure3_graph() -> Graph {
    Graph::from_edges(
        10,
        &[
            (0, 1),
            (0, 2),
            (0, 3), // S1 -> A, B, C
            (1, 6),
            (1, 4),
            (2, 4),
            (3, 5), // A-G, A-E, B-E, C-F
            (4, 6),
            (4, 7),
            (5, 7),
            (5, 8), // E-G, E-H, F-H, F-I
            (6, 9),
            (7, 9),
            (8, 9), // G, H, I -> D1
        ],
    )
}

const NAMES: [&str; 10] = ["S1", "A", "B", "C", "E", "F", "G", "H", "I", "D1"];

fn show(path: &[u32]) -> String {
    path.iter().map(|&n| NAMES[n as usize]).collect::<Vec<_>>().join("->")
}

fn main() {
    let g = figure3_graph();
    println!("== Figure 3 walkthrough: 3 paths from S1 to D1 ==");

    let mask = Mask::new(&g);
    let sp = shortest_path(&g, 0, 9, &mask, &mut TieBreak::Deterministic).unwrap();
    println!("shortest path: {}", show(&sp));

    let vanilla = k_shortest_paths(&g, 0, 9, 3, &mut TieBreak::Deterministic);
    println!("\nvanilla KSP(3) — every path squeezes through S1->A:");
    for p in &vanilla {
        println!("  {}", show(p));
    }

    let mut rng = StdRng::seed_from_u64(3);
    let randomized = k_shortest_paths(&g, 0, 9, 3, &mut TieBreak::Randomized(&mut rng));
    println!("\nrandomized KSP(3) — ties broken uniformly:");
    for p in &randomized {
        println!("  {}", show(p));
    }

    let disjoint = edge_disjoint_paths(&g, 0, 9, 3, &mut TieBreak::Deterministic);
    println!("\nedge-disjoint KSP(3) — full bandwidth of three paths:");
    for p in &disjoint {
        println!("  {}", show(p));
    }

    println!("\n== The same effect on a real RRG(36,24,16), all pairs, k = 8 ==");
    let net = JellyfishNetwork::build(RrgParams::small(), 5).unwrap();
    println!("{:<12} {:>9} {:>11} {:>10}", "selection", "avg hops", "% disjoint", "max share");
    for sel in [
        PathSelection::Ksp(8),
        PathSelection::RKsp(8),
        PathSelection::EdKsp(8),
        PathSelection::REdKsp(8),
    ] {
        let table = net.paths(sel, &PairSet::AllPairs, 9);
        let p = net.path_properties(&table);
        println!(
            "{:<12} {:>9.2} {:>10.0}% {:>10}",
            sel.name(),
            p.avg_path_len,
            p.disjoint_pair_fraction * 100.0,
            p.max_link_share
        );
    }
    println!("\n(KSP shares links heavily; the edge-disjoint variants never do,");
    println!(" and randomization barely changes path lengths — Tables II-IV.)");
}
