//! Saturation sweep: compares the routing mechanisms of the paper on one
//! Jellyfish instance under uniform-random traffic — a miniature of
//! Figures 7–10 that runs in seconds.
//!
//! ```text
//! cargo run --release --example saturation_sweep
//! ```

use jellyfish::prelude::*;
use jellyfish::JellyfishNetwork;

fn main() {
    let params = RrgParams::new(36, 24, 16);
    let net = JellyfishNetwork::build(params, 11).expect("RRG construction");
    let pattern = PacketDestinations::Uniform { num_hosts: params.num_hosts() };

    // Path tables: the weakest (vanilla KSP) and strongest (rEDKSP)
    // selections, plus the shortest-path table vanilla UGAL needs for its
    // valiant legs.
    let tables = [
        ("KSP(8)", net.paths(PathSelection::Ksp(8), &PairSet::AllPairs, 1)),
        ("rEDKSP(8)", net.paths(PathSelection::REdKsp(8), &PairSet::AllPairs, 1)),
    ];
    let sp = net.shortest_paths(true, 2);

    println!("saturation throughput (packets/node/cycle), uniform random on RRG(36,24,16)\n");
    println!("{:<14} {:>10} {:>12}", "mechanism", "KSP(8)", "rEDKSP(8)");
    for mech in [
        Mechanism::SinglePath,
        Mechanism::Random,
        Mechanism::RoundRobin,
        Mechanism::VanillaUgal,
        Mechanism::KspUgal,
        Mechanism::KspAdaptive,
    ] {
        print!("{:<14}", mech.name());
        for (_, table) in &tables {
            let sat = net.saturation_throughput(
                table,
                Some(&sp),
                mech,
                &pattern,
                0.02,
                SimConfig::paper(),
            );
            print!(" {sat:>10.2}");
        }
        println!();
    }
    println!("\nExpected shape (paper Figs 7-10): adaptive > oblivious; KSP-adaptive");
    println!("on rEDKSP(8) is the best combination; SP is far behind everything.");
}
