//! Jellyfish vs. fat-tree: reproduces the cost-efficiency argument from
//! the paper's introduction. With the same switches (radix and count) as
//! a 3-level k-ary fat-tree, a Jellyfish RRG supports more hosts at a
//! shorter average path length and comparable bisection.
//!
//! ```text
//! cargo run --release --example fattree_comparison
//! ```

use jellyfish::prelude::*;
use jellyfish::routing::{edge_disjoint_paths, TieBreak};
use jellyfish::topology::analysis::estimate_bisection;
use jellyfish::topology::fattree::{build_fat_tree, FatTreeParams};
use jellyfish::topology::metrics::topology_stats;
use jellyfish::JellyfishNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A k = 8 fat-tree: 80 switches of radix 8, 128 hosts.
    let ft = FatTreeParams::new(8);
    let ft_graph = build_fat_tree(ft).expect("fat-tree builds");
    let ft_stats = topology_stats(&ft_graph);

    // Jellyfish from the same inventory: 80 radix-8 switches. Give each
    // switch 2 hosts (160 total, 25% more than the fat-tree) and use the
    // remaining 6 ports for the fabric.
    let jf_params = RrgParams::new(ft.switches(), 8, 6);
    let jf = JellyfishNetwork::build(jf_params, 2021).expect("RRG builds");
    let jf_stats = jf.stats();

    println!("same inventory: {} switches of radix 8\n", ft.switches());
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "topology", "hosts", "avg spl", "diameter", "bisection"
    );
    let ft_bis = estimate_bisection(&ft_graph, 8, 1);
    let jf_bis = estimate_bisection(jf.graph(), 8, 1);
    println!(
        "{:<22} {:>10} {:>10.2} {:>10} {:>12}",
        "fat-tree (k=8)",
        ft.num_hosts(),
        ft_stats.avg_shortest_path_len,
        ft_stats.diameter,
        ft_bis.min_cut_edges
    );
    println!(
        "{:<22} {:>10} {:>10.2} {:>10} {:>12}",
        "Jellyfish RRG(80,8,6)",
        jf_params.num_hosts(),
        jf_stats.avg_shortest_path_len,
        jf_stats.diameter,
        jf_bis.min_cut_edges
    );

    // Path diversity: edge-disjoint paths between random switch pairs.
    let mut rng = StdRng::seed_from_u64(5);
    let mut ft_div = 0usize;
    let mut jf_div = 0usize;
    let samples = 50;
    for _ in 0..samples {
        // Fat-tree: sample edge switches (where hosts attach).
        let a = rng.random_range(0..ft.edge_switches()) as u32;
        let mut b = rng.random_range(0..ft.edge_switches()) as u32;
        while b == a {
            b = rng.random_range(0..ft.edge_switches()) as u32;
        }
        ft_div +=
            edge_disjoint_paths(&ft_graph, a, b, 8, &mut TieBreak::Randomized(&mut rng)).len();
        let c = rng.random_range(0..jf_params.switches) as u32;
        let mut d = rng.random_range(0..jf_params.switches) as u32;
        while d == c {
            d = rng.random_range(0..jf_params.switches) as u32;
        }
        jf_div +=
            edge_disjoint_paths(jf.graph(), c, d, 8, &mut TieBreak::Randomized(&mut rng)).len();
    }
    println!("\nedge-disjoint paths between random host-bearing switch pairs (k = 8 requested):");
    println!("  fat-tree:  {:.1} on average", ft_div as f64 / samples as f64);
    println!("  Jellyfish: {:.1} on average", jf_div as f64 / samples as f64);
    println!("\n(Jellyfish hosts more nodes from the same switches with shorter");
    println!("paths — the cost argument that motivates the paper — and its path");
    println!("diversity is what the rEDKSP/KSP-adaptive machinery exploits.)");
}
