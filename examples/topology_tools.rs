//! Topology tooling walkthrough: sample RRG instances, inspect their
//! structure (distance histogram, bisection estimate), export to
//! Graphviz, and cache a path table on disk with the text serializer.
//!
//! ```text
//! cargo run --release --example topology_tools
//! ```

use jellyfish::prelude::*;
use jellyfish::routing::{load_table, save_table};
use jellyfish::topology::analysis::{distance_histogram, estimate_bisection, to_dot};
use jellyfish::JellyfishNetwork;

fn main() {
    let params = RrgParams::new(36, 24, 16);
    println!("comparing RRG construction methods on RRG(36,24,16):\n");
    println!(
        "{:<14} {:>9} {:>9} {:>16} {:>14}",
        "method", "avg spl", "diameter", "pairs <= 2 hops", "bisection est."
    );
    for (name, method) in [
        ("incremental", ConstructionMethod::Incremental),
        ("pairing", ConstructionMethod::PairingModel),
    ] {
        let net = JellyfishNetwork::build_with(params, method, 7).expect("RRG construction");
        let stats = net.stats();
        let hist = distance_histogram(net.graph());
        let bis = estimate_bisection(net.graph(), 8, 7);
        println!(
            "{:<14} {:>9.3} {:>9} {:>15.1}% {:>8} edges",
            name,
            stats.avg_shortest_path_len,
            stats.diameter,
            hist.cumulative_fraction(2) * 100.0,
            bis.min_cut_edges
        );
    }

    // Export a small instance for visualization.
    let net = JellyfishNetwork::build(RrgParams::new(12, 6, 3), 1).unwrap();
    let dot = to_dot(net.graph(), "jellyfish12");
    let dot_path = std::env::temp_dir().join("jellyfish12.dot");
    std::fs::write(&dot_path, &dot).expect("write dot file");
    println!(
        "\nwrote {} ({} edges) — render with `dot -Tpng`",
        dot_path.display(),
        net.graph().num_edges()
    );

    // Cache an expensive path table and reload it.
    let table = net.paths(PathSelection::REdKsp(3), &PairSet::AllPairs, 5);
    let cache = std::env::temp_dir().join("jellyfish12.paths");
    save_table(&table, &cache).expect("save path table");
    let loaded = load_table(&cache).expect("reload path table");
    println!(
        "cached {} pairs of rEDKSP(3) paths to {} and reloaded {} pairs (max {} hops)",
        table.num_pairs(),
        cache.display(),
        loaded.num_pairs(),
        loaded.max_hops()
    );
    assert_eq!(loaded.num_pairs(), table.num_pairs());
}
