//! Quickstart: build a Jellyfish network, select paths, and evaluate a
//! workload three ways (path quality, throughput model, cycle simulation).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jellyfish::prelude::*;
use jellyfish::JellyfishNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's small topology: 36 switches with 24 ports each, 16 of
    // which form the random regular switch fabric -> 288 compute nodes.
    let params = RrgParams::small();
    let net = JellyfishNetwork::build(params, 2021).expect("RRG construction");
    let stats = net.stats();
    println!(
        "built RRG({}, {}, {}): {} hosts, avg shortest path {:.2} hops, diameter {}",
        params.switches,
        params.ports,
        params.network_ports,
        params.num_hosts(),
        stats.avg_shortest_path_len,
        stats.diameter
    );

    // Path selection: the paper's best scheme (randomized edge-disjoint
    // KSP) vs. the vanilla KSP baseline.
    let redksp = net.paths(PathSelection::REdKsp(8), &PairSet::AllPairs, 1);
    let ksp = net.paths(PathSelection::Ksp(8), &PairSet::AllPairs, 1);
    for (name, table) in [("KSP(8)", &ksp), ("rEDKSP(8)", &redksp)] {
        let p = net.path_properties(table);
        println!(
            "{name:>10}: avg len {:.2} hops, {:.0}% pairs link-disjoint, worst link shared by {} paths",
            p.avg_path_len,
            p.disjoint_pair_fraction * 100.0,
            p.max_link_share
        );
    }

    // Throughput model (Eq. 1) on one random permutation.
    let mut rng = StdRng::seed_from_u64(7);
    let flows = random_permutation(params.num_hosts(), &mut rng);
    let m_ksp = net.model_throughput(&ksp, &flows);
    let m_red = net.model_throughput(&redksp, &flows);
    println!(
        "model throughput (random permutation): KSP(8) {:.3}, rEDKSP(8) {:.3}",
        m_ksp.mean, m_red.mean
    );

    // Cycle-level simulation with the paper's KSP-adaptive mechanism at a
    // moderate load.
    let pattern = PacketDestinations::from_flows(params.num_hosts(), &flows);
    let run =
        net.simulate(&redksp, None, Mechanism::KspAdaptive, &pattern, 0.3, SimConfig::paper());
    println!(
        "flit-sim at 0.3 load (KSP-adaptive over rEDKSP): avg latency {:.1} cycles, accepted {:.3}, saturated: {}",
        run.avg_latency, run.accepted, run.saturated
    );
}
